open Ll_sim

type node_id = Fabric.node_id

type ('req, 'resp) msg =
  | Request of int * 'req
  | Response of int * 'resp
  | Oneway of 'req

(* Per-peer latency scoring, RFC-6298 style: srtt is an EWMA (gain 1/8),
   dev an EWMA of the deviation (gain 1/4), and the score srtt + 4*dev is
   a cheap upper-percentile proxy. Samples are taken on every response at
   the demux, so scoring is always on; it draws nothing from the rng and
   schedules nothing, keeping knob-off runs schedule-identical. *)
type peer_stats = {
  mutable ps_srtt : float;
  mutable ps_dev : float;
  mutable ps_samples : int;
}

type 'resp pending_call = {
  pc_iv : 'resp Ivar.t;
  pc_sent : Engine.time;
  pc_dst : node_id;
}

module Retry_budget = struct
  (* Token bucket metering retries (never first attempts): each fresh call
     deposits [ratio] tokens, each retry withdraws one. Under a timeout
     storm the bucket drains and callers shed instead of amplifying the
     overload with retry traffic. *)
  type t = { ratio : float; cap : float; mutable tokens : float }

  let create ?(ratio = 0.1) ?(cap = 8.0) () = { ratio; cap; tokens = cap }

  let deposit t =
    if t.tokens < t.cap then t.tokens <- Float.min t.cap (t.tokens +. t.ratio)

  let try_withdraw t =
    if t.tokens >= 1.0 then begin
      t.tokens <- t.tokens -. 1.0;
      true
    end
    else false

  let tokens t = t.tokens
end

type ('req, 'resp) endpoint = {
  fabric : ('req, 'resp) msg Fabric.t;
  node : ('req, 'resp) msg Fabric.node;
  pending : (int, 'resp pending_call) Hashtbl.t;
  peers : (node_id, peer_stats) Hashtbl.t;
  mutable next_token : int;
  mutable handler :
    (src:node_id -> 'req -> reply:(?size:int -> 'resp -> unit) -> unit)
      option;
  mutable service_time : 'req -> Engine.time;
  mutable budget : Retry_budget.t option;
  (* Ingress scheduler hook: when installed, every incoming request is
     offered to the scheduler before the default serial service-time
     charge. Returning [true] means the scheduler took ownership (queued
     the request for its own service discipline, or shed it with an
     immediate reply); [false] falls through to the default path —
     schedulers bypass traffic they do not classify. *)
  mutable ingress :
    (src:node_id -> 'req -> reply:(?size:int -> 'resp -> unit) -> bool)
      option;
}

(* Per-domain counters over every endpoint in the run — the retry-path
   analogue of Engine.timers_cancelled. *)
type counter_snapshot = {
  cs_timeouts : int;
  cs_retries : int;
  cs_shed : int;
  cs_hedges_fired : int;
  cs_hedges_won : int;
}

type counters = {
  mutable c_timeouts : int;
  mutable c_retries : int;
  mutable c_shed : int;
  mutable c_hedges_fired : int;
  mutable c_hedges_won : int;
}

let dls_counters : counters Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        c_timeouts = 0;
        c_retries = 0;
        c_shed = 0;
        c_hedges_fired = 0;
        c_hedges_won = 0;
      })

let ctrs () = Domain.DLS.get dls_counters

let counters () =
  let c = ctrs () in
  {
    cs_timeouts = c.c_timeouts;
    cs_retries = c.c_retries;
    cs_shed = c.c_shed;
    cs_hedges_fired = c.c_hedges_fired;
    cs_hedges_won = c.c_hedges_won;
  }

let counters_diff ~before ~after =
  {
    cs_timeouts = after.cs_timeouts - before.cs_timeouts;
    cs_retries = after.cs_retries - before.cs_retries;
    cs_shed = after.cs_shed - before.cs_shed;
    cs_hedges_fired = after.cs_hedges_fired - before.cs_hedges_fired;
    cs_hedges_won = after.cs_hedges_won - before.cs_hedges_won;
  }

let node t = t.node
let endpoint_id t = Fabric.id t.node

let set_retry_budget t b = t.budget <- Some b
let retry_budget t = t.budget

let note_sample t dst rtt =
  let rtt = float_of_int rtt in
  match Hashtbl.find_opt t.peers dst with
  | None ->
    Hashtbl.replace t.peers dst
      { ps_srtt = rtt; ps_dev = rtt /. 2.0; ps_samples = 1 }
  | Some ps ->
    let err = rtt -. ps.ps_srtt in
    ps.ps_srtt <- ps.ps_srtt +. (0.125 *. err);
    ps.ps_dev <- ps.ps_dev +. (0.25 *. (Float.abs err -. ps.ps_dev));
    ps.ps_samples <- ps.ps_samples + 1

let note_peer_sample t dst rtt = note_sample t dst rtt

let peer_score t dst =
  match Hashtbl.find_opt t.peers dst with
  | Some ps -> Some (ps.ps_srtt +. (4.0 *. ps.ps_dev))
  | None -> None

let peer_samples t dst =
  match Hashtbl.find_opt t.peers dst with
  | Some ps -> ps.ps_samples
  | None -> 0

let forget_peer t dst = Hashtbl.remove t.peers dst

let hedge_deadline t ~dsts ~floor =
  (* Lower-median of the peers' scores: an adaptive "this is how long a
     healthy replica takes at a high percentile" deadline that one slow
     outlier cannot inflate (with 2 candidates the faster one wins the
     median; with 3, one straggler never carries it). *)
  let scores = List.filter_map (fun d -> peer_score t d) dsts in
  match List.sort Float.compare scores with
  | [] -> floor
  | sorted ->
    let med = List.nth sorted ((List.length sorted - 1) / 2) in
    let med = int_of_float med in
    if med > floor then med else floor

(* The default service discipline: charge the request's service time
   serially (this runs in the demux fiber, so the endpoint's "CPU" is a
   single queue) and run the handler on its own fiber. Also the re-entry
   point for an ingress scheduler once it dequeues a request. *)
let serve t ~src req ~reply =
  match t.handler with
  | None -> ()
  | Some h ->
    let st = t.service_time req in
    if st > 0 then Engine.sleep st;
    (* The endpoint may have crashed while the request was "on CPU". *)
    if Fabric.is_alive t.node then
      Engine.spawn ~name:(Fabric.name t.node ^ ".handler") (fun () ->
          h ~src req ~reply)

let dispatch t ~src req ~reply =
  match t.handler with
  | None -> ()
  | Some _ -> (
    match t.ingress with
    | Some f -> if not (f ~src req ~reply) then serve t ~src req ~reply
    | None -> serve t ~src req ~reply)

let demux_loop t () =
  let rec loop () =
    let src, m = Fabric.recv t.node in
    (match m with
    | Response (token, resp) -> (
      match Hashtbl.find_opt t.pending token with
      | Some pc ->
        Hashtbl.remove t.pending token;
        note_sample t pc.pc_dst (Engine.now () - pc.pc_sent);
        ignore (Ivar.try_fill pc.pc_iv resp)
      | None -> () (* response to a call that already timed out *))
    | Request (token, req) ->
      let replied = ref false in
      let reply ?(size = 64) resp =
        if not !replied then begin
          replied := true;
          Fabric.send t.fabric ~src:t.node ~dst:src ~size
            (Response (token, resp))
        end
      in
      dispatch t ~src req ~reply
    | Oneway req -> dispatch t ~src req ~reply:(fun ?size:_ _ -> ()));
    loop ()
  in
  loop ()

let endpoint fabric node =
  let t =
    {
      fabric;
      node;
      pending = Hashtbl.create 32;
      peers = Hashtbl.create 8;
      next_token = 0;
      handler = None;
      service_time = (fun _ -> 0);
      budget = None;
      ingress = None;
    }
  in
  Engine.spawn ~name:(Fabric.name node ^ ".demux") (demux_loop t);
  t

let set_handler t h = t.handler <- Some h

let set_service_time t f = t.service_time <- f

let set_ingress t f = t.ingress <- Some f

let service_time_of t req = t.service_time req

let call_async_token t ~dst ?(size = 64) req =
  let token = t.next_token in
  t.next_token <- token + 1;
  let iv = Ivar.create () in
  Hashtbl.replace t.pending token
    { pc_iv = iv; pc_sent = Engine.now (); pc_dst = dst };
  Fabric.send t.fabric ~src:t.node ~dst ~size (Request (token, req));
  (token, iv)

let call_async t ~dst ?size req = snd (call_async_token t ~dst ?size req)

let call t ~dst ?size req = Ivar.read (call_async t ~dst ?size req)

(* Shared timeout tail: on expiry the pending entry is dropped so a storm
   of timed-out calls cannot grow the token table (a late response then
   finds no entry and is ignored — and contributes no latency sample). *)
let wait_or_expire t token iv ~timeout =
  match Ivar.read_timeout iv ~timeout with
  | Some _ as r -> r
  | None ->
    Hashtbl.remove t.pending token;
    (ctrs ()).c_timeouts <- (ctrs ()).c_timeouts + 1;
    None

let call_timeout t ~dst ?size ~timeout req =
  let token, iv = call_async_token t ~dst ?size req in
  wait_or_expire t token iv ~timeout

let pending_calls t = Hashtbl.length t.pending

let call_retry_result t ~dst ?size ?(timeout = Engine.ms 1) ?(max_tries = 3)
    ?(backoff = 0) ?budget req =
  let budget = match budget with Some _ as b -> b | None -> t.budget in
  (match budget with Some b -> Retry_budget.deposit b | None -> ());
  (* Exponential backoff with jitter between retries: attempt [n] sleeps
     [backoff * 2^min(n,6) / 2 + jitter], jitter uniform in the same
     range. Drawn from the engine's RNG, so deterministic per seed. *)
  let rec go attempt =
    if attempt >= max_tries then `Timeout
    else if
      attempt > 0
      && (match budget with
         | Some b -> not (Retry_budget.try_withdraw b)
         | None -> false)
    then begin
      (ctrs ()).c_shed <- (ctrs ()).c_shed + 1;
      `Shed
    end
    else begin
      if attempt > 0 then (ctrs ()).c_retries <- (ctrs ()).c_retries + 1;
      match call_timeout t ~dst ?size ~timeout req with
      | Some r -> `Ok r
      | None ->
        if backoff > 0 && attempt < max_tries - 1 then begin
          let base = backoff * (1 lsl min attempt 6) in
          let jitter =
            Random.State.int (Engine.random_state ()) (max 1 base)
          in
          Engine.sleep ((base / 2) + jitter)
        end;
        go (attempt + 1)
    end
  in
  go 0

let call_retry t ~dst ?size ?timeout ?max_tries ?backoff ?budget req =
  match call_retry_result t ~dst ?size ?timeout ?max_tries ?backoff ?budget req
  with
  | `Ok r -> Some r
  | `Timeout | `Shed -> None

let call_hedged t ~dsts ?(size = 64) ~timeout ~hedge_after req =
  match dsts with
  | [] -> invalid_arg "Rpc.call_hedged: no destinations"
  | [ d ] -> (
    match call_timeout t ~dst:d ~size ~timeout req with
    | Some r -> Some (r, d)
    | None -> None)
  | d1 :: d2 :: _ ->
    let result = Ivar.create () in
    (* [hedge_go] carries the hedging decision: filled [true] by the
       deadline timer (or by an early primary failure — immediate
       failover), [false] by a win (no hedge needed). The hedge fiber is
       spawned up front and blocks on it, because the deadline fires in a
       bare timer callback where spawning/blocking is off-limits. *)
    let hedge_go = Ivar.create () in
    (* In-flight attempts; [hedge_pending] is true while the hedge fiber
       might still launch an attempt. Only when both reach quiescence with
       no winner may the call conclude [None]. *)
    let outstanding = ref 1 in
    let hedge_pending = ref true in
    let tok = ref Engine.no_timer in
    let finish dst resp =
      if Ivar.try_fill result (Some (resp, dst)) then begin
        ignore (Engine.cancel !tok : bool);
        ignore (Ivar.try_fill hedge_go false : bool);
        if dst = d2 then begin
          let c = ctrs () in
          c.c_hedges_won <- c.c_hedges_won + 1
        end
      end
    in
    let check_done () =
      if !outstanding = 0 && not !hedge_pending then
        ignore (Ivar.try_fill result None : bool)
    in
    let attempt_failed () =
      decr outstanding;
      (* Fail over early: a dead primary should not wait out the hedge
         deadline. If the timer already fired, the hedge fiber owns the
         decision and [check_done] stays a no-op until it resolves. *)
      ignore (Ivar.try_fill hedge_go true : bool);
      check_done ()
    in
    Engine.spawn ~name:"rpc.hedge" (fun () ->
        if Ivar.read hedge_go && not (Ivar.is_full result) then begin
          let c = ctrs () in
          c.c_hedges_fired <- c.c_hedges_fired + 1;
          incr outstanding;
          let token, iv = call_async_token t ~dst:d2 ~size req in
          (match wait_or_expire t token iv ~timeout with
          | Some r -> finish d2 r
          | None -> decr outstanding);
          hedge_pending := false;
          check_done ()
        end
        else begin
          hedge_pending := false;
          check_done ()
        end);
    Engine.spawn ~name:"rpc.hedge-primary" (fun () ->
        let token, iv = call_async_token t ~dst:d1 ~size req in
        match wait_or_expire t token iv ~timeout with
        | Some r -> finish d1 r
        | None -> attempt_failed ());
    tok := Engine.timer_after hedge_after (fun () ->
        ignore (Ivar.try_fill hedge_go true : bool));
    Ivar.read result

let send_oneway t ~dst ?(size = 64) req =
  Fabric.send t.fabric ~src:t.node ~dst ~size (Oneway req)
