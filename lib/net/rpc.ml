open Ll_sim

type node_id = Fabric.node_id

type ('req, 'resp) msg =
  | Request of int * 'req
  | Response of int * 'resp
  | Oneway of 'req

type ('req, 'resp) endpoint = {
  fabric : ('req, 'resp) msg Fabric.t;
  node : ('req, 'resp) msg Fabric.node;
  pending : (int, 'resp Ivar.t) Hashtbl.t;
  mutable next_token : int;
  mutable handler :
    (src:node_id -> 'req -> reply:(?size:int -> 'resp -> unit) -> unit)
      option;
  mutable service_time : 'req -> Engine.time;
}

let node t = t.node
let endpoint_id t = Fabric.id t.node

let dispatch t ~src req ~reply =
  match t.handler with
  | None -> ()
  | Some h ->
    let st = t.service_time req in
    if st > 0 then Engine.sleep st;
    (* The endpoint may have crashed while the request was "on CPU". *)
    if Fabric.is_alive t.node then
      Engine.spawn ~name:(Fabric.name t.node ^ ".handler") (fun () ->
          h ~src req ~reply)

let demux_loop t () =
  let rec loop () =
    let src, m = Fabric.recv t.node in
    (match m with
    | Response (token, resp) -> (
      match Hashtbl.find_opt t.pending token with
      | Some iv ->
        Hashtbl.remove t.pending token;
        ignore (Ivar.try_fill iv resp)
      | None -> () (* response to a call that already timed out *))
    | Request (token, req) ->
      let replied = ref false in
      let reply ?(size = 64) resp =
        if not !replied then begin
          replied := true;
          Fabric.send t.fabric ~src:t.node ~dst:src ~size
            (Response (token, resp))
        end
      in
      dispatch t ~src req ~reply
    | Oneway req -> dispatch t ~src req ~reply:(fun ?size:_ _ -> ()));
    loop ()
  in
  loop ()

let endpoint fabric node =
  let t =
    {
      fabric;
      node;
      pending = Hashtbl.create 32;
      next_token = 0;
      handler = None;
      service_time = (fun _ -> 0);
    }
  in
  Engine.spawn ~name:(Fabric.name node ^ ".demux") (demux_loop t);
  t

let set_handler t h = t.handler <- Some h

let set_service_time t f = t.service_time <- f

let call_async t ~dst ?(size = 64) req =
  let token = t.next_token in
  t.next_token <- token + 1;
  let iv = Ivar.create () in
  Hashtbl.replace t.pending token iv;
  Fabric.send t.fabric ~src:t.node ~dst ~size (Request (token, req));
  iv

let call t ~dst ?size req = Ivar.read (call_async t ~dst ?size req)

let call_timeout t ~dst ?size ~timeout req =
  let iv = call_async t ~dst ?size req in
  Ivar.read_timeout iv ~timeout

let call_retry t ~dst ?size ?(timeout = Engine.ms 1) ?(max_tries = 3)
    ?(backoff = 0) req =
  (* Exponential backoff with jitter between retries: attempt [n] sleeps
     [backoff * 2^min(n,6) / 2 + jitter], jitter uniform in the same
     range. Drawn from the engine's RNG, so deterministic per seed. *)
  let rec go attempt =
    if attempt >= max_tries then None
    else
      match call_timeout t ~dst ?size ~timeout req with
      | Some r -> Some r
      | None ->
        if backoff > 0 && attempt < max_tries - 1 then begin
          let base = backoff * (1 lsl min attempt 6) in
          let jitter =
            Random.State.int (Engine.random_state ()) (max 1 base)
          in
          Engine.sleep ((base / 2) + jitter)
        end;
        go (attempt + 1)
  in
  go 0

let send_oneway t ~dst ?(size = 64) req =
  Fabric.send t.fabric ~src:t.node ~dst ~size (Oneway req)
