open Ll_sim

type node_id = int

type link = {
  one_way : Engine.time;
  per_byte_ns : float;
  jitter : Engine.time;
}

let default_link = { one_way = 1_500; per_byte_ns = 0.32; jitter = 300 }

type 'm node = {
  nid : node_id;
  nname : string;
  send_overhead : Engine.time;
  recv_overhead : Engine.time;
  inbox : (node_id * 'm) Mailbox.t;
  mutable alive : bool;
  mutable extra : Engine.time;
  mutable delivered : int;
}

type 'm t = {
  link : link;
  rng : Rng.t;
  mutable nodes : 'm node array;
  (* FIFO enforcement: earliest time the next message on (src,dst) may
     arrive. *)
  last_arrival : (node_id * node_id, Engine.time) Hashtbl.t;
  partitions : (node_id * node_id, unit) Hashtbl.t;
  mutable drop_p : float;
  mutable sent : int;
  mutable sent_bytes : int;
}

let create ?(link = default_link) ?seed () =
  (* Without an explicit seed, derive one from the engine's master-seeded
     stream so a single master seed reproduces the fabric's jitter and
     drop decisions too. *)
  let seed =
    match seed with
    | Some s -> s
    | None -> Random.State.bits (Engine.random_state ())
  in
  {
    link;
    rng = Rng.create ~seed;
    nodes = [||];
    last_arrival = Hashtbl.create 64;
    partitions = Hashtbl.create 8;
    drop_p = 0.0;
    sent = 0;
    sent_bytes = 0;
  }

let add_node t ~name ?(send_overhead = 500) ?(recv_overhead = 500) () =
  let n =
    {
      nid = Array.length t.nodes;
      nname = name;
      send_overhead;
      recv_overhead;
      inbox = Mailbox.create ();
      alive = true;
      extra = 0;
      delivered = 0;
    }
  in
  t.nodes <- Array.append t.nodes [| n |];
  n

let id n = n.nid
let name n = n.nname
let node_by_id t i = t.nodes.(i)
let node_count t = Array.length t.nodes

let pair_key a b = if a < b then (a, b) else (b, a)

let partitioned t a b = Hashtbl.mem t.partitions (pair_key a b)

let send t ~src ~dst ~size msg =
  let dst_node = t.nodes.(dst) in
  if
    src.alive && dst_node.alive
    && (not (partitioned t src.nid dst))
    && not (t.drop_p > 0.0 && Rng.bool t.rng ~p:t.drop_p)
  then begin
    t.sent <- t.sent + 1;
    t.sent_bytes <- t.sent_bytes + size;
    let jitter =
      if t.link.jitter > 0 then Rng.int t.rng t.link.jitter else 0
    in
    let wire =
      t.link.one_way
      + int_of_float (t.link.per_byte_ns *. float_of_int size)
      + jitter
    in
    let delay =
      src.send_overhead + wire + dst_node.recv_overhead + src.extra
      + dst_node.extra
    in
    let arrival = Engine.now () + delay in
    let key = (src.nid, dst) in
    let arrival =
      match Hashtbl.find_opt t.last_arrival key with
      | Some last when last >= arrival -> last + 1
      | _ -> arrival
    in
    Hashtbl.replace t.last_arrival key arrival;
    let sender = src.nid in
    Engine.at arrival (fun () ->
        (* Re-check liveness and partition at delivery time: a message in
           flight to a node that crashes meanwhile is lost. *)
        if dst_node.alive && not (partitioned t sender dst) then begin
          dst_node.delivered <- dst_node.delivered + 1;
          Mailbox.send dst_node.inbox (sender, msg)
        end)
  end

let recv n = Mailbox.recv n.inbox

let recv_timeout n ~timeout = Mailbox.recv_timeout n.inbox ~timeout

let inbox_length n = Mailbox.length n.inbox

let crash t n =
  n.alive <- false;
  Mailbox.clear n.inbox;
  (* Forget FIFO bookkeeping involving this node: everything in flight is
     dropped, so a revived node's first message must not be artificially
     delayed behind (or ordered after) pre-crash traffic. *)
  let stale =
    Hashtbl.fold
      (fun ((src, dst) as key) _ acc ->
        if src = n.nid || dst = n.nid then key :: acc else acc)
      t.last_arrival []
  in
  List.iter (Hashtbl.remove t.last_arrival) stale

let recover _t n = n.alive <- true

let is_alive n = n.alive

let partition t a b = Hashtbl.replace t.partitions (pair_key a b) ()

let heal t a b = Hashtbl.remove t.partitions (pair_key a b)

let set_drop_probability t p = t.drop_p <- p

let set_extra_delay n d = n.extra <- d

let extra_delay n = n.extra

let messages_sent t = t.sent

let bytes_sent t = t.sent_bytes

let node_messages_in n = n.delivered
