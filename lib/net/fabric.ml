open Ll_sim

type node_id = int

(* Node ids are packed two-to-an-int for FIFO / partition bookkeeping:
   [(a lsl key_bits) lor b]. 2^20 nodes per fabric is plenty (the open-loop
   bench drives 10^5 producer nodes) and int-keyed tables avoid boxing a
   tuple per lookup on the per-message hot path. *)
let key_bits = 20
let max_nodes = 1 lsl key_bits

let fifo_key src dst = (src lsl key_bits) lor dst

let pair_key a b = if a < b then (a lsl key_bits) lor b else (b lsl key_bits) lor a

type link = {
  one_way : Engine.time;
  per_byte_ns : float;
  jitter : Engine.time;
}

let default_link = { one_way = 1_500; per_byte_ns = 0.32; jitter = 300 }

type 'm node = {
  nid : node_id;
  nname : string;
  send_overhead : Engine.time;
  recv_overhead : Engine.time;
  inbox : (node_id * 'm) Mailbox.t;
  mutable alive : bool;
  mutable extra : Engine.time;
  mutable delivered : int;
  (* Packed FIFO keys this node participates in (as src or dst), so crash
     cleanup walks O(degree) keys instead of folding the whole table: an
     intrusive slab list of int keys (immediate, unboxed) instead of a
     cons per first-contact pair. May hold bounded duplicates across
     crash/recover cycles; removal is idempotent. *)
  mutable fifo_keys : int;
}

(* Per-direction link degradation (gray failures): extra delay and/or
   loss applied to messages entering the directed (src, dst) link. Unlike
   a partition this is asymmetric — one direction can be lossy or slow
   while the reverse stays healthy — which is the shape of a partial
   partition or a half-broken NIC queue. *)
type lfault = { lf_delay : Engine.time; lf_drop_p : float }

type 'm t = {
  link : link;
  rng : Rng.t;
  (* Amortized-growth registry: [nodes] doubles, [nnodes] is the count.
     Slots at index >= nnodes are padding (re-pointing at node 0). *)
  mutable nodes : 'm node array;
  mutable nnodes : int;
  (* FIFO enforcement: earliest time the next message on (src,dst) may
     arrive, keyed by the packed pair. *)
  last_arrival : (int, Engine.time) Hashtbl.t;
  partitions : (int, unit) Hashtbl.t;
  (* Directed link faults, keyed by the packed (src, dst) key. The hot
     path guards on the table being empty, so healthy runs pay one length
     check per send and draw nothing from the rng. *)
  link_faults : (int, lfault) Hashtbl.t;
  mutable drop_p : float;
  mutable sent : int;
  mutable sent_bytes : int;
}

let create ?(link = default_link) ?seed () =
  (* Without an explicit seed, derive one from the engine's master-seeded
     stream so a single master seed reproduces the fabric's jitter and
     drop decisions too. *)
  let seed =
    match seed with
    | Some s -> s
    | None -> Random.State.bits (Engine.random_state ())
  in
  {
    link;
    rng = Rng.create ~seed;
    nodes = [||];
    nnodes = 0;
    last_arrival = Hashtbl.create 64;
    partitions = Hashtbl.create 8;
    link_faults = Hashtbl.create 8;
    drop_p = 0.0;
    sent = 0;
    sent_bytes = 0;
  }

let add_node t ~name ?(send_overhead = 500) ?(recv_overhead = 500) () =
  if t.nnodes >= max_nodes then failwith "Fabric.add_node: too many nodes";
  let n =
    {
      nid = t.nnodes;
      nname = name;
      send_overhead;
      recv_overhead;
      inbox = Mailbox.create ();
      alive = true;
      extra = 0;
      delivered = 0;
      fifo_keys = Slab.nil;
    }
  in
  let cap = Array.length t.nodes in
  if t.nnodes >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nnodes = Array.make ncap n in
    Array.blit t.nodes 0 nnodes 0 cap;
    t.nodes <- nnodes
  end;
  t.nodes.(t.nnodes) <- n;
  t.nnodes <- t.nnodes + 1;
  n

let id n = n.nid
let name n = n.nname

let node_by_id t i =
  if i < 0 || i >= t.nnodes then invalid_arg "Fabric.node_by_id";
  t.nodes.(i)

let node_count t = t.nnodes

let partitioned t a b = Hashtbl.mem t.partitions (pair_key a b)

let send t ~src ~dst ~size msg =
  let dst_node = t.nodes.(dst) in
  (* Directed link fault, if any. Empty-table check first: healthy runs
     must not pay a hash lookup (or draw from the rng) per message. *)
  let lf =
    if Hashtbl.length t.link_faults = 0 then None
    else Hashtbl.find_opt t.link_faults (fifo_key src.nid dst)
  in
  if
    src.alive && dst_node.alive
    && (not (partitioned t src.nid dst))
    && (not (t.drop_p > 0.0 && Rng.bool t.rng ~p:t.drop_p))
    && not
         (match lf with
         | Some { lf_drop_p = p; _ } when p > 0.0 ->
           (* p >= 1.0 is a one-way partition: deterministic, no draw. *)
           p >= 1.0 || Rng.bool t.rng ~p
         | _ -> false)
  then begin
    t.sent <- t.sent + 1;
    t.sent_bytes <- t.sent_bytes + size;
    let jitter =
      if t.link.jitter > 0 then Rng.int t.rng t.link.jitter else 0
    in
    let wire =
      t.link.one_way
      + int_of_float (t.link.per_byte_ns *. float_of_int size)
      + jitter
    in
    let delay =
      src.send_overhead + wire + dst_node.recv_overhead + src.extra
      + dst_node.extra
      + (match lf with Some l -> l.lf_delay | None -> 0)
    in
    let arrival = Engine.now () + delay in
    let key = fifo_key src.nid dst in
    let arrival =
      match Hashtbl.find_opt t.last_arrival key with
      | Some last -> if last >= arrival then last + 1 else arrival
      | None ->
        (* First traffic on this (src,dst): index the key on both
           endpoints for O(degree) crash cleanup. *)
        let ks = Slab.alloc (Obj.repr key) in
        Slab.set_next ks src.fifo_keys;
        src.fifo_keys <- ks;
        let kd = Slab.alloc (Obj.repr key) in
        Slab.set_next kd dst_node.fifo_keys;
        dst_node.fifo_keys <- kd;
        arrival
    in
    Hashtbl.replace t.last_arrival key arrival;
    let sender = src.nid in
    (* Bare callback: delivery only re-checks liveness and enqueues, no
       fiber effects, so it skips the fiber-start cost per hop. *)
    Engine.call_at arrival (fun () ->
        (* Re-check liveness and partition at delivery time: a message in
           flight to a node that crashes meanwhile is lost. *)
        if dst_node.alive && not (partitioned t sender dst) then begin
          dst_node.delivered <- dst_node.delivered + 1;
          Mailbox.send dst_node.inbox (sender, msg)
        end)
  end

let recv n = Mailbox.recv n.inbox

let recv_timeout n ~timeout = Mailbox.recv_timeout n.inbox ~timeout

let inbox_length n = Mailbox.length n.inbox

let crash t n =
  n.alive <- false;
  Mailbox.clear n.inbox;
  (* Forget FIFO bookkeeping involving this node: everything in flight is
     dropped, so a revived node's first message must not be artificially
     delayed behind (or ordered after) pre-crash traffic. The per-node key
     index makes this O(degree). *)
  let c = ref n.fifo_keys in
  while !c >= 0 do
    Hashtbl.remove t.last_arrival (Obj.obj (Slab.get !c) : int);
    let next = Slab.next !c in
    Slab.free !c;
    c := next
  done;
  n.fifo_keys <- Slab.nil

let recover _t n = n.alive <- true

let is_alive n = n.alive

let partition t a b = Hashtbl.replace t.partitions (pair_key a b) ()

let heal t a b = Hashtbl.remove t.partitions (pair_key a b)

let set_drop_probability t p = t.drop_p <- p

let set_link_fault t ~src ~dst ?(delay = 0) ?(drop_p = 0.0) () =
  Hashtbl.replace t.link_faults (fifo_key src dst)
    { lf_delay = delay; lf_drop_p = drop_p }

let clear_link_fault t ~src ~dst =
  Hashtbl.remove t.link_faults (fifo_key src dst)

let link_fault t ~src ~dst =
  match Hashtbl.find_opt t.link_faults (fifo_key src dst) with
  | Some { lf_delay; lf_drop_p } -> Some (lf_delay, lf_drop_p)
  | None -> None

let set_extra_delay n d = n.extra <- d

let extra_delay n = n.extra

let messages_sent t = t.sent

let bytes_sent t = t.sent_bytes

let node_messages_in n = n.delivered
