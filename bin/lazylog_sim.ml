(* lazylog-sim: drive any of the shared-log systems in this repository
   with a configurable append(+read) workload on the simulated cluster and
   report latency/throughput. A command-line playground for the paper's
   design space:

     dune exec bin/lazylog_sim.exe -- --system erwin-st --shards 5 \
       --rate 200000 --size 4096 --seconds 0.2 --read-lag-ms 3

   Systems: erwin-m, erwin-st, corfu, scalog, kafka, erwin-kafka. *)

open Ll_sim
open Lazylog
open Ll_workload

type system = Erwin_m | Erwin_st | Corfu | Scalog | Kafka | Erwin_kafka

let system_of_string = function
  | "erwin-m" -> Ok Erwin_m
  | "erwin-st" -> Ok Erwin_st
  | "corfu" -> Ok Corfu
  | "scalog" -> Ok Scalog
  | "kafka" -> Ok Kafka
  | "erwin-kafka" -> Ok Erwin_kafka
  | s -> Error (`Msg ("unknown system: " ^ s))

let system_conv =
  Cmdliner.Arg.conv
    ( system_of_string,
      fun fmt s ->
        Format.pp_print_string fmt
          (match s with
          | Erwin_m -> "erwin-m"
          | Erwin_st -> "erwin-st"
          | Corfu -> "corfu"
          | Scalog -> "scalog"
          | Kafka -> "kafka"
          | Erwin_kafka -> "erwin-kafka") )

let build_factory system ~shards ~nvme ~batching ~linger_us =
  let disk = if nvme then Config.Nvme else Config.Sata in
  let erwin_cfg cfg =
    if batching then
      {
        cfg with
        Config.append_batching = true;
        linger = Engine.us linger_us;
      }
    else cfg
  in
  match system with
  | Erwin_m ->
    let cfg =
      erwin_cfg { Config.default with nshards = shards; shard_disk = disk }
    in
    let cluster = Erwin_m.create ~cfg () in
    ((fun () -> Erwin_m.client cluster), fun () -> Some cluster.stable_gp)
  | Erwin_st ->
    let cfg =
      erwin_cfg
        { Config.default with nshards = shards; shard_disk = disk;
          shard_backup_count = 1 }
    in
    let cluster = Erwin_st.create ~cfg () in
    ((fun () -> Erwin_st.client cluster), fun () -> Some cluster.stable_gp)
  | Corfu ->
    let config =
      { Ll_corfu.Corfu.default_config with nshards = shards; shard_disk = disk }
    in
    let c = Ll_corfu.Corfu.create ~config () in
    ((fun () -> Ll_corfu.Corfu.client c), fun () -> None)
  | Scalog ->
    let config =
      { Ll_scalog.Scalog.default_config with nshards = shards; shard_disk = disk }
    in
    let s = Ll_scalog.Scalog.create ~config () in
    ((fun () -> Ll_scalog.Scalog.client s), fun () -> None)
  | Kafka ->
    let config =
      { Ll_kafka.Kafka.default_config with npartitions = shards; disk }
    in
    let k = Ll_kafka.Kafka.create ~config () in
    ((fun () -> Ll_kafka.Kafka.client_log k), fun () -> None)
  | Erwin_kafka ->
    let kafka_config =
      { Ll_kafka.Kafka.default_config with npartitions = shards; disk }
    in
    let sys = Ll_kafka.Kafka_erwin.create ~kafka_config () in
    ((fun () -> Ll_kafka.Kafka_erwin.client sys), fun () -> None)

let run system shards rate size seconds read_lag_ms nvme batching linger_us
    seed =
  let duration = Engine.us_f (seconds *. 1e6) in
  let app_lat, read_lat, achieved, stable =
    Runner.in_sim ~seed (fun () ->
        let factory, stable =
          build_factory system ~shards ~nvme ~batching ~linger_us
        in
        let clients = Array.init 16 (fun _ -> factory ()) in
        let app_lat = Stats.Reservoir.create () in
        let read_lat = Stats.Reservoir.create () in
        let completed = ref 0 in
        let acked = ref 0 in
        let t_measure = Engine.now () + Engine.ms 10 in
        let t_end = t_measure + duration in
        Arrival.open_loop ~rate ~until:t_end (fun i ->
            let log = clients.(i mod 16) in
            let t0 = Engine.now () in
            if log.Log_api.append ~size ~data:(string_of_int i) then begin
              incr acked;
              if t0 >= t_measure then begin
                Stats.Reservoir.add app_lat (Engine.now () - t0);
                incr completed
              end
            end);
        (match read_lag_ms with
        | Some lag_ms ->
          let lag = Engine.us_f (lag_ms *. 1000.) in
          let reader = factory () in
          Engine.spawn ~name:"cli.reader" (fun () ->
              let cursor = ref 0 in
              let rec loop () =
                if Engine.now () < t_end then begin
                  if !acked > !cursor then begin
                    Engine.sleep lag;
                    let t0 = Engine.now () in
                    let got = reader.Log_api.read ~from:!cursor ~len:1 in
                    if t0 >= t_measure then
                      Stats.Reservoir.add read_lat (Engine.now () - t0);
                    cursor := !cursor + max 1 (List.length got)
                  end
                  else Engine.sleep (Engine.us 20);
                  loop ()
                end
              in
              loop ())
        | None -> ());
        Engine.sleep_until (t_end + Engine.ms 50);
        ( app_lat,
          read_lat,
          Stats.throughput_per_sec ~count:!completed ~dur:duration,
          stable () ))
  in
  Printf.printf "system      : %s (%d shard%s%s%s)\n"
    (match system with
    | Erwin_m -> "erwin-m" | Erwin_st -> "erwin-st" | Corfu -> "corfu"
    | Scalog -> "scalog" | Kafka -> "kafka" | Erwin_kafka -> "erwin-m over kafka")
    shards
    (if shards = 1 then "" else "s")
    (if nvme then ", NVMe" else ", SATA")
    (if batching then Printf.sprintf ", batching linger=%dus" linger_us
     else "");
  Printf.printf "offered     : %.0f appends/s x %d B for %.3f s (simulated)\n"
    rate size seconds;
  Printf.printf "achieved    : %.0f appends/s\n" achieved;
  Printf.printf "append lat  : mean %.1f us | p50 %.1f | p99 %.1f | max %.1f\n"
    (Stats.Reservoir.mean_us app_lat)
    (Stats.Reservoir.percentile_us app_lat 50.0)
    (Stats.Reservoir.percentile_us app_lat 99.0)
    (Stats.Reservoir.max_us app_lat);
  if Stats.Reservoir.count read_lat > 0 then
    Printf.printf "read lat    : mean %.1f us | p50 %.1f | p99 %.1f\n"
      (Stats.Reservoir.mean_us read_lat)
      (Stats.Reservoir.percentile_us read_lat 50.0)
      (Stats.Reservoir.percentile_us read_lat 99.0);
  match stable with
  | Some gp -> Printf.printf "stable-gp   : %d records bound and readable\n" gp
  | None -> ()

open Cmdliner

let system =
  Arg.(
    value
    & opt system_conv Erwin_m
    & info [ "system"; "s" ] ~docv:"SYSTEM"
        ~doc:
          "Shared log to run: erwin-m, erwin-st, corfu, scalog, kafka, \
           erwin-kafka.")

let shards =
  Arg.(value & opt int 1 & info [ "shards" ] ~doc:"Number of storage shards.")

let rate =
  Arg.(value & opt float 30_000. & info [ "rate" ] ~doc:"Offered appends/s.")

let size =
  Arg.(value & opt int 4096 & info [ "size" ] ~doc:"Record size in bytes.")

let seconds =
  Arg.(
    value & opt float 0.1
    & info [ "seconds" ] ~doc:"Measured simulated duration in seconds.")

let read_lag =
  Arg.(
    value
    & opt (some float) None
    & info [ "read-lag-ms" ]
        ~doc:"Also run a sequential reader lagging appends by this many ms.")

let nvme =
  Arg.(value & flag & info [ "nvme" ] ~doc:"NVMe-class shard disks.")

let batching =
  Arg.(
    value & flag
    & info [ "batching" ]
        ~doc:
          "Enable append-path group commit (Erwin systems only): the \
           client-side linger batcher coalesces concurrent appends into \
           one wire batch.")

let linger_us =
  Arg.(
    value & opt int 20
    & info [ "linger-us" ]
        ~doc:"Linger window for $(b,--batching), in microseconds.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let cmd =
  let doc = "drive a simulated shared-log cluster with a workload" in
  Cmd.v
    (Cmd.info "lazylog-sim" ~doc)
    Term.(
      const run $ system $ shards $ rate $ size $ seconds $ read_lag $ nvme
      $ batching $ linger_us $ seed)

let () = exit (Cmd.eval cmd)
