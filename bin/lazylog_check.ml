(* lazylog-check: seeded exploration of the Erwin systems under schedule
   perturbation and scripted/randomized fault injection, with always-on
   invariant monitors.

     dune exec bin/lazylog_check.exe -- --systems erwin-m,erwin-st \
       --seeds 100 --shards 2

   Each seed is one fully deterministic simulated run: the seed drives
   the engine's tie-breaking perturbation, the fabric's jitter/drop
   stream, the workload arrivals, and the generated fault script. On a
   violation the checker shrinks the fault script, writes a repro
   artifact, and exits non-zero; `--replay FILE` re-executes an artifact
   deterministically. *)

open Ll_check

let pp_outcome_line (o : Checker.outcome) =
  let sc = o.Checker.scenario in
  let k = Fault_dsl.count_kind sc.Artifact.script in
  let faults =
    (* Classic verbs always; the gray (fail-slow) verbs only when the
       script has any, so non-gray sweep output is unchanged. *)
    let base =
      Printf.sprintf "%dc/%dp/%dl/%ds" k.Fault_dsl.crashes
        k.Fault_dsl.partitions k.Fault_dsl.losses k.Fault_dsl.stragglers
    in
    if k.Fault_dsl.linkfaults + k.Fault_dsl.stutters + k.Fault_dsl.degrades = 0
    then base
    else
      base
      ^ Printf.sprintf "/%dlf/%dst/%ddg" k.Fault_dsl.linkfaults
          k.Fault_dsl.stutters k.Fault_dsl.degrades
  in
  match o.Checker.violation with
  | Some v ->
    Printf.printf "FAIL %-8s seed=%-6d faults=%-11s %s\n%!"
      sc.Artifact.system sc.Artifact.seed faults
      (Format.asprintf "%a" Monitors.pp_violation v)
  | None ->
    Printf.printf "ok   %-8s seed=%-6d faults=%-11s acked=%d reads=%d \
                   stable=%d events=%d\n%!"
      sc.Artifact.system sc.Artifact.seed faults o.Checker.coverage.acked
      o.Checker.coverage.reads o.Checker.coverage.stable o.Checker.events

type agg = {
  mutable runs : int;
  mutable viols : int;
  mutable acked : int;
  mutable reads : int;
  mutable crashes : int;
  mutable views : int;
  mutable delivered : int;
  mutable gray_faults : int;
  mutable outliers : int;
  mutable retries : int;
  mutable shed : int;
  mutable hedges_won : int;
  mutable tenant_logs : int;
  mutable ingress_shed : int;
  mutable events : int;
}

let summarize (outcomes : Checker.outcome list) =
  let by_system = Hashtbl.create 4 in
  List.iter
    (fun (o : Checker.outcome) ->
      let sys = o.Checker.scenario.Artifact.system in
      let a =
        match Hashtbl.find_opt by_system sys with
        | Some a -> a
        | None ->
          let a =
            {
              runs = 0; viols = 0; acked = 0; reads = 0; crashes = 0;
              views = 0; delivered = 0; gray_faults = 0; outliers = 0;
              retries = 0; shed = 0; hedges_won = 0; tenant_logs = 0;
              ingress_shed = 0; events = 0;
            }
          in
          Hashtbl.replace by_system sys a;
          a
      in
      let c = o.Checker.coverage in
      let r = o.Checker.rpc in
      a.runs <- a.runs + 1;
      (match o.Checker.violation with
      | Some _ -> a.viols <- a.viols + 1
      | None -> ());
      a.acked <- a.acked + c.Monitors.acked;
      a.reads <- a.reads + c.Monitors.reads;
      a.crashes <- a.crashes + c.Monitors.crashes;
      a.views <- a.views + c.Monitors.view_installs;
      a.delivered <- a.delivered + c.Monitors.delivered;
      a.gray_faults <- a.gray_faults + c.Monitors.gray_faults;
      a.outliers <- a.outliers + c.Monitors.outliers_removed;
      a.retries <- a.retries + r.Ll_net.Rpc.cs_retries;
      a.shed <- a.shed + r.Ll_net.Rpc.cs_shed;
      a.hedges_won <- a.hedges_won + r.Ll_net.Rpc.cs_hedges_won;
      a.tenant_logs <- a.tenant_logs + c.Monitors.tenant_logs;
      a.ingress_shed <- a.ingress_shed + c.Monitors.ingress_shed;
      a.events <- a.events + o.Checker.events)
    outcomes;
  print_endline "";
  print_endline "coverage summary";
  Hashtbl.iter
    (fun sys a ->
      Printf.printf
        "  %-8s %4d seeds | %d violations | %d appends acked | %d records \
         read | %d crashes | %d view installs | %d delivered | %.1fM events\n"
        sys a.runs a.viols a.acked a.reads a.crashes a.views a.delivered
        (float_of_int a.events /. 1e6);
      (* Gray-resilience line only when something gray happened, so the
         classic sweeps print exactly what they always did. *)
      if a.gray_faults + a.outliers + a.retries + a.shed + a.hedges_won > 0
      then
        Printf.printf
        "  %-8s      gray | %d gray faults | %d outliers evicted | %d \
         retries (%d shed) | %d hedges won\n"
          "" a.gray_faults a.outliers a.retries a.shed a.hedges_won;
      (* Tenants line only in multi-log fabric sweeps, same principle. *)
      if a.tenant_logs + a.ingress_shed > 0 then
        Printf.printf
          "  %-8s   tenants | %d tenant-log stabilizations | %d appends \
           shed by admission control\n"
          "" a.tenant_logs a.ingress_shed)
    by_system

let write_artifact dir (o : Checker.outcome) =
  match Checker.artifact_of o with
  | None -> None
  | Some a ->
    (try if not (Sys.is_directory dir) then failwith "not a dir"
     with Sys_error _ | Failure _ -> (try Sys.mkdir dir 0o755 with Sys_error _ -> ()));
    let path =
      Filename.concat dir
        (Printf.sprintf "repro-%s-seed%d.txt" a.Artifact.scenario.Artifact.system
           a.Artifact.scenario.Artifact.seed)
    in
    Artifact.save ~path a;
    Some path

let run_sweep systems seeds seed_base shards jobs quick serial batching
    replica_reads subscriptions gray tenants bug artifact_dir =
  let horizon =
    if quick then Checker.quick_horizon else Checker.default_horizon
  in
  let scenarios =
    List.concat_map
      (fun system ->
        List.init seeds (fun i ->
            Checker.scenario ~system ~seed:(seed_base + i) ~shards ~serial
              ~batching ~replica_reads ~subscriptions ~gray ~tenants ?bug
              ~horizon ()))
      systems
  in
  Printf.printf
    "lazylog-check: %d runs (%s; seeds %d..%d; %d shards%s%s%s; %d jobs)\n%!"
    (List.length scenarios)
    (String.concat "," systems)
    seed_base
    (seed_base + seeds - 1)
    shards
    (if serial then "; serial orderer" else "")
    ((if batching then "; append batching" else "")
    ^ (if replica_reads then "; replica reads" else "")
    ^ (if subscriptions then "; subscriptions" else "")
    ^ (if gray then "; gray (fail-slow) faults + mitigations" else "")
    ^ if tenants then "; multi-log fabric + fair ingress" else "")
    (match bug with Some b -> "; BUG GATE " ^ b | None -> "")
    jobs;
  let outcomes = Checker.sweep ~jobs scenarios in
  List.iter pp_outcome_line outcomes;
  let failures =
    List.filter (fun o -> o.Checker.violation <> None) outcomes
  in
  summarize outcomes;
  match failures with
  | [] ->
    Printf.printf "\nno invariant violations in %d runs\n"
      (List.length outcomes);
    0
  | f :: _ ->
    (* Shrink and persist the first failure (one artifact is enough to
       start debugging; the per-run lines above list the rest). *)
    let v = Option.get f.Checker.violation in
    Printf.printf "\nshrinking fault script for %s seed %d (%d steps)...\n%!"
      f.Checker.scenario.Artifact.system f.Checker.scenario.Artifact.seed
      (List.length f.Checker.scenario.Artifact.script);
    let shrunk_scenario =
      if v.Monitors.invariant = "exception" then f.Checker.scenario
      else Checker.shrink f.Checker.scenario v
    in
    let shrunk_outcome = Checker.run_one shrunk_scenario in
    let final =
      if shrunk_outcome.Checker.violation <> None then shrunk_outcome else f
    in
    Printf.printf "shrunk to %d steps\n"
      (List.length final.Checker.scenario.Artifact.script);
    (match write_artifact artifact_dir final with
    | Some path -> Printf.printf "repro artifact: %s\n" path
    | None -> ());
    Printf.printf "\n%d of %d runs violated an invariant\n"
      (List.length failures) (List.length outcomes);
    1

let run_replay path =
  let a = Artifact.load path in
  let sc = a.Artifact.scenario in
  Printf.printf
    "replaying %s: system=%s seed=%d shards=%d script=%d steps\n%!" path
    sc.Artifact.system sc.Artifact.seed sc.Artifact.shards
    (List.length sc.Artifact.script);
  Printf.printf "recorded violation: [%s] %s (event #%d)\n%!"
    a.Artifact.invariant a.Artifact.detail a.Artifact.at_event;
  let o = Checker.run_one sc in
  match o.Checker.violation with
  | Some v ->
    Printf.printf "reproduced:         %s\n"
      (Format.asprintf "%a" Monitors.pp_violation v);
    if
      v.Monitors.invariant = a.Artifact.invariant
      && v.Monitors.at_event = a.Artifact.at_event
    then begin
      print_endline "deterministic replay: violation matches the artifact";
      1
    end
    else begin
      print_endline
        "WARNING: replay violated an invariant but not at the recorded \
         event (artifact from a different build?)";
      1
    end
  | None ->
    print_endline "replay completed with NO violation (artifact stale?)";
    0

let main scheduler systems seeds seed_base shards jobs quick serial batching
    replica_reads subscriptions gray tenants bug artifact_dir replay =
  (* Set before any Engine.run; spawned sweep domains inherit it. *)
  Ll_sim.Engine.set_scheduler scheduler;
  match replay with
  | Some path -> run_replay path
  | None ->
    run_sweep systems seeds seed_base shards jobs quick serial batching
      replica_reads subscriptions gray tenants bug artifact_dir

open Cmdliner

let scheduler =
  Arg.(
    value
    & opt (enum [ ("wheel", `Wheel); ("heap", `Heap) ]) `Wheel
    & info [ "scheduler" ] ~docv:"SCHED"
        ~doc:
          "Engine event scheduler: the timer $(b,wheel) (default) or the \
           reference $(b,heap). Both execute the identical schedule; the \
           flag exists so CI can cross-check them.")

let systems =
  Arg.(
    value
    & opt (list string) [ "erwin-m"; "erwin-st" ]
    & info [ "systems" ] ~docv:"SYS,..."
        ~doc:"Comma-separated systems to check (erwin-m, erwin-st).")

let seeds =
  Arg.(
    value & opt int 50
    & info [ "seeds" ] ~doc:"Number of seeds to sweep per system.")

let seed_base =
  Arg.(value & opt int 1 & info [ "seed-base" ] ~doc:"First seed.")

let shards =
  Arg.(value & opt int 2 & info [ "shards" ] ~doc:"Number of storage shards.")

let jobs =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "jobs"; "j" ] ~doc:"Parallel runs (one OS domain each).")

let quick =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Shorter per-run horizon (CI smoke mode).")

let serial =
  Arg.(
    value & flag
    & info [ "serial" ]
        ~doc:
          "Check the serial-orderer baseline (pipeline_depth=1, fixed \
           batch) instead of the pipelined orderer.")

let batching =
  Arg.(
    value & flag
    & info [ "batching" ]
        ~doc:
          "Run the clients with append group commit enabled (client-side \
           linger batcher + batched replica ingress): a batch straddling a \
           crash or seal must fail atomically per record, never half-ack.")

let replica_reads =
  Arg.(
    value & flag
    & info [ "replica-reads" ]
        ~doc:
          "Run the demand-driven read path (reads round-robin over shard \
           replicas, read-triggered eager binding, scan readahead) with \
           the reader probing at the stable tail, so backup serving, \
           primary forwarding and demand binding are all exercised under \
           faults.")

let subscriptions =
  Arg.(
    value & flag
    & info [ "subscriptions" ]
        ~doc:
          "Run the streaming-delivery subsystem alongside the workload (a \
           subscription manager plus two pushed consumers, one \
           crash-restarted twice mid-run) and check exactly-once delivery: \
           every appended record reaches every registered subscriber \
           exactly once, in order, across the injected faults.")

let gray =
  Arg.(
    value & flag
    & info [ "gray" ]
        ~doc:
          "Hostile-world mode: the fault generator draws gray (fail-slow) \
           verbs — asymmetric link faults, disk stutter and sustained \
           degrade — and every mitigation runs (hedged reads, retry \
           budgets, latency-outlier eviction), with a progress audit \
           (stable keeps advancing, every acked record binds) after the \
           drain tail.")

let tenants =
  Arg.(
    value & flag
    & info [ "tenants" ]
        ~doc:
          "Multi-log fabric mode: every writer is pinned to its own \
           tenant log, one extra aggressor tenant bursts back-to-back \
           appends, and the cluster runs with weighted-fair ingress (DRR \
           + token-bucket admission) on; every position-scoped invariant \
           (real-time order, stable prefix, read agreement, truncation \
           safety) is checked per log.")

let bug =
  Arg.(
    value
    & opt (some string) None
    & info [ "bug" ] ~docv:"NAME"
        ~doc:
          "Enable an intentional known-bad configuration (no-pinning) to \
           validate that the checker catches it.")

let artifact_dir =
  Arg.(
    value
    & opt string "check-artifacts"
    & info [ "artifact-dir" ] ~doc:"Where to write repro artifacts.")

let replay =
  Arg.(
    value
    & opt (some file) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:"Re-execute a repro artifact deterministically and exit.")

let cmd =
  let doc =
    "seeded schedule/fault exploration of the Erwin systems with invariant \
     monitors"
  in
  Cmd.v
    (Cmd.info "lazylog-check" ~doc)
    Term.(
      const main $ scheduler $ systems $ seeds $ seed_base $ shards $ jobs
      $ quick $ serial $ batching $ replica_reads $ subscriptions $ gray
      $ tenants $ bug $ artifact_dir $ replay)

let () = exit (Cmd.eval' cmd)
